// Command crossprof prints Fig. 12-style latency breakdowns for any HE
// operator on any simulated TPU target and parameter set — the
// reproduction's stand-in for the XLA profiler trace viewer. The tool
// is a thin shell over the Schedule IR: it compiles for a Target (one
// tensor core, or a -cores N pod), lowers one operator, and renders
// the returned Schedule.
//
// Usage:
//
//	crossprof -device TPUv6e -set D -op mult
//	crossprof -device TPUv4  -set B -op rotate
//	crossprof -device TPUv6e -set D -op mult -cores 4   # pod lowering
//	crossprof -op bootstrap
//
// Run with: go run ./cmd/crossprof [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"cross"
	icross "cross/internal/cross"
	"cross/internal/tpusim"
)

func main() {
	device := flag.String("device", "TPUv6e", "TPU generation (TPUv4, TPUv5e, TPUv5p, TPUv6e)")
	set := flag.String("set", "D", "parameter set (A, B, C, D)")
	op := flag.String("op", "mult", "operator: add, mult, rescale, rotate, keyswitch, bootstrap, ntt, intt")
	batch := flag.Int("batch", 1, "batch size for ntt/intt")
	cores := flag.Int("cores", 1, "core count: 1 profiles a single tensor core, >1 a pod")
	flag.Parse()

	spec, ok := tpusim.SpecByName(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(1)
	}
	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "invalid core count %d (need ≥ 1)\n", *cores)
		os.Exit(1)
	}
	params, err := icross.NamedSet(*set)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Devices and pods are both Targets; one Compile call covers both.
	var target cross.Target = cross.NewDevice(spec)
	if *cores > 1 {
		pod, err := cross.NewPod(spec, *cores)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		target = pod
	}
	comp, err := cross.Compile(target, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var sched *cross.Schedule
	switch *op {
	case "add":
		sched = comp.LowerHEAdd()
	case "mult":
		sched = comp.LowerHEMult()
	case "rescale":
		sched = comp.LowerRescale()
	case "rotate":
		sched = comp.LowerRotate()
	case "keyswitch":
		sched = comp.LowerKeySwitch()
	case "bootstrap":
		sched = comp.LowerBootstrap(icross.DefaultBootstrapSchedule(params))
	case "ntt":
		sched = comp.LowerNTT(*batch)
	case "intt":
		sched = comp.LowerINTT(*batch)
	default:
		fmt.Fprintf(os.Stderr, "unknown operator %q\n", *op)
		os.Exit(1)
	}

	fmt.Printf("%s on %s, Set %s (N=2^%d, L=%d, dnum=%d, split %dx%d)\n",
		sched.Op, sched.Target, *set, params.LogN, params.L, params.Dnum, params.R, params.C)
	fmt.Printf("simulated latency: %.2f µs", sched.Total*1e6)
	if sched.Cores > 1 {
		fmt.Printf(" (%d cores, %.2f µs collective)", sched.Cores, sched.Collective*1e6)
	}
	fmt.Printf("\nkernel launches: %s\n\n", sched.Kernels)
	fmt.Println("category breakdown:")
	fmt.Println(sched.Breakdown())
}
