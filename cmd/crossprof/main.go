// Command crossprof prints Fig. 12-style latency breakdowns for any HE
// operator on any simulated TPU generation and parameter set — the
// reproduction's stand-in for the XLA profiler trace viewer.
//
// Usage:
//
//	crossprof -device TPUv6e -set D -op mult
//	crossprof -device TPUv4  -set B -op rotate
//	crossprof -op bootstrap
//
// Run with: go run ./cmd/crossprof [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"cross"
	icross "cross/internal/cross"
	"cross/internal/tpusim"
)

func main() {
	device := flag.String("device", "TPUv6e", "TPU generation (TPUv4, TPUv5e, TPUv5p, TPUv6e)")
	set := flag.String("set", "D", "parameter set (A, B, C, D)")
	op := flag.String("op", "mult", "operator: add, mult, rescale, rotate, keyswitch, bootstrap, ntt, intt")
	batch := flag.Int("batch", 1, "batch size for ntt/intt")
	flag.Parse()

	spec, ok := tpusim.SpecByName(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(1)
	}
	params, err := icross.NamedSet(*set)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dev := cross.NewDevice(spec)
	comp, err := cross.NewCompiler(dev, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var total float64
	switch *op {
	case "add":
		total = comp.CostHEAdd()
	case "mult":
		total = comp.CostHEMult()
	case "rescale":
		total = comp.CostRescale()
	case "rotate":
		total = comp.CostRotate()
	case "keyswitch":
		total = comp.CostKeySwitch()
	case "bootstrap":
		total = comp.CostBootstrap(icross.DefaultBootstrapSchedule(params))
	case "ntt":
		total = comp.CostNTTMat(*batch)
	case "intt":
		total = comp.CostINTTMat(*batch)
	default:
		fmt.Fprintf(os.Stderr, "unknown operator %q\n", *op)
		os.Exit(1)
	}

	fmt.Printf("%s on %s, Set %s (N=2^%d, L=%d, dnum=%d, split %dx%d)\n",
		*op, spec.Name, *set, params.LogN, params.L, params.Dnum, params.R, params.C)
	fmt.Printf("simulated latency: %.2f µs (one tensor core)\n\n", total*1e6)
	fmt.Println("category breakdown:")
	fmt.Println(dev.Trace.Breakdown())
}
