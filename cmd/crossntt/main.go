// Command crossntt is the NTT throughput explorer: it compares the
// three NTT algorithm lowerings the paper analyses — radix-2
// Cooley–Tukey (Alg. 3), 4-step with explicit transpose, and the MAT
// layout-invariant 3-step (Fig. 10) — on any simulated TPU generation,
// sweeping batch sizes; and it cross-checks every algorithm's
// functional output against the naive O(N²) oracle first.
//
// Usage:
//
//	crossntt -device TPUv6e -logn 14
//
// Run with: go run ./cmd/crossntt [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"cross"
	icross "cross/internal/cross"
	"cross/internal/ring"
	"cross/internal/tpusim"
)

func main() {
	device := flag.String("device", "TPUv6e", "TPU generation")
	logN := flag.Int("logn", 13, "ring degree exponent")
	flag.Parse()

	spec, ok := tpusim.SpecByName(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(1)
	}

	// Functional cross-check at a testable degree.
	verify()

	p := icross.SetA()
	p.LogN = *logN
	r := 128
	if (1<<*logN)/r < 2 {
		r = (1 << *logN) / 2
	}
	p.R, p.C = r, (1<<*logN)/r

	comp, err := cross.Compile(cross.NewDevice(spec), p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("NTT algorithm comparison on %s at N=2^%d (split %dx%d):\n\n", spec.Name, *logN, p.R, p.C)
	fmt.Printf("%-8s%16s%16s%16s%14s\n", "batch", "radix-2 µs", "4-step µs", "MAT 3-step µs", "MAT kNTT/s")
	for batch := 1; batch <= 128; batch <<= 1 {
		radix2 := comp.LowerOp("radix-2", func() float64 { return comp.CostNTTRadix2(batch) }).Total
		four := comp.LowerOp("4-step", func() float64 { return comp.CostNTT4Step(batch) }).Total
		mat := comp.LowerNTT(batch).Total
		fmt.Printf("%-8d%16.1f%16.1f%16.1f%14.0f\n",
			batch, radix2*1e6, four*1e6, mat*1e6, float64(batch)/mat/1e3)
	}
	best, thr := comp.BestNTTBatch(256)
	fmt.Printf("\npeak: batch %d → %.0f kNTT/s per tensor core\n", best, thr/1e3)
	fmt.Println("\n(Tab. X context: the paper measures ~25–30× radix-2 → MAT speedup on")
	fmt.Println(" TPUv4 at batch 128; the ratio here should be the same order.)")
}

// verify checks all three algorithm implementations against the naive
// O(N²) transform on a small ring.
func verify() {
	n := 256
	primes, err := cross.NTTFriendlyPrimes(28, uint64(n), 1)
	if err != nil {
		panic(err)
	}
	rg, err := cross.NewRing(n, primes)
	if err != nil {
		panic(err)
	}
	in := make([]uint64, n)
	for i := range in {
		in[i] = uint64(i*i + 1)
	}
	naive := rg.NTTNaiveLimb(0, in)

	// radix-2 (bit-reversed output)
	ct := append([]uint64(nil), in...)
	rg.NTTLimb(0, ct)
	for j := 0; j < n; j++ {
		if ct[ring.BitReverse(uint64(j), 8)] != naive[j] {
			panic("radix-2 NTT diverges from naive oracle")
		}
	}
	// MAT 3-step (bit-reversed order plan) and 4-step (natural order)
	planBR, err := cross.NewMatNTTPlan(rg, 16, 16, cross.LayoutBitRev)
	if err != nil {
		panic(err)
	}
	got := make([]uint64, n)
	planBR.ForwardLimb(0, in, got)
	for j := range got {
		if got[j] != ct[j] {
			panic("MAT 3-step diverges from radix-2")
		}
	}
	planDS, err := cross.NewMatNTTPlan(rg, 16, 16, cross.LayoutDigitSwap)
	if err != nil {
		panic(err)
	}
	planDS.Forward4Step(0, in, got)
	for j := range got {
		if got[j] != naive[j] {
			panic("4-step diverges from naive oracle")
		}
	}
	fmt.Println("functional check: radix-2, 4-step, and MAT 3-step all match the O(N²) oracle")
	fmt.Println()
}
