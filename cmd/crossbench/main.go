// Command crossbench regenerates the paper's evaluation section: every
// table and figure of §V, with paper-reported values printed next to
// the reproduction's measurements.
//
// Usage:
//
//	crossbench                 # run everything (paper order)
//	crossbench -list           # list experiment identifiers
//	crossbench -experiment id  # run one experiment ("Table V", "fig11b", …)
//	crossbench -scaling        # pod core-count scaling sweep (1/2/4/8 cores)
//	crossbench -scaling -device TPUv5p
//	crossbench -json [...]     # machine-readable output (any mode)
//
// With -json the tool emits JSON instead of the formatted tables:
// -list prints a string array of identifiers; every other mode prints
// Report objects ({"ID","Title","Body","Notes"}) — the feed for
// bench-trajectory tracking.
//
// Run with: go run ./cmd/crossbench [flags]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cross"
	"cross/internal/harness"
	"cross/internal/tpusim"
)

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
}

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	experiment := flag.String("experiment", "", "run a single experiment by identifier")
	scaling := flag.Bool("scaling", false, "run only the pod core-count scaling sweep")
	device := flag.String("device", "TPUv6e", "TPU generation for -scaling (TPUv4, TPUv5e, TPUv5p, TPUv6e)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of formatted tables")
	flag.Parse()

	deviceSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "device" {
			deviceSet = true
		}
	})
	if *scaling && (*list || *experiment != "") {
		fmt.Fprintln(os.Stderr, "crossbench: -scaling cannot be combined with -list or -experiment")
		os.Exit(1)
	}
	if deviceSet && !*scaling {
		fmt.Fprintln(os.Stderr, "crossbench: -device only applies to -scaling")
		os.Exit(1)
	}

	if *scaling {
		spec, ok := tpusim.SpecByName(*device)
		if !ok {
			fmt.Fprintf(os.Stderr, "crossbench: unknown device %q\n", *device)
			os.Exit(1)
		}
		r := harness.CoreScalingOn(spec)
		if *asJSON {
			emitJSON(r)
			return
		}
		fmt.Println(r.String())
		return
	}

	if *list {
		ids := cross.ExperimentIDs()
		if *asJSON {
			emitJSON(ids)
			return
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	if *experiment != "" {
		exp, err := cross.ExperimentByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			emitJSON(exp)
			return
		}
		fmt.Println(exp.String())
		return
	}

	all := cross.AllExperiments()
	if *asJSON {
		emitJSON(all)
		return
	}
	fmt.Println("CROSS reproduction — regenerating the paper's evaluation (§V)")
	fmt.Println("simulated TPU latencies are model estimates; compare shapes, not absolutes")
	fmt.Println()
	for _, exp := range all {
		fmt.Println(exp.String())
	}
}
