// Command crossbench regenerates the paper's evaluation section: every
// table and figure of §V, with paper-reported values printed next to
// the reproduction's measurements.
//
// Usage:
//
//	crossbench                 # run everything (paper order)
//	crossbench -list           # list experiment identifiers
//	crossbench -experiment id  # run one experiment ("Table V", "fig11b", …)
//
// Run with: go run ./cmd/crossbench [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"cross"
)

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	experiment := flag.String("experiment", "", "run a single experiment by identifier")
	flag.Parse()

	if *list {
		for _, id := range cross.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	if *experiment != "" {
		exp, err := cross.ExperimentByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(exp.String())
		return
	}

	fmt.Println("CROSS reproduction — regenerating the paper's evaluation (§V)")
	fmt.Println("simulated TPU latencies are model estimates; compare shapes, not absolutes")
	fmt.Println()
	for _, exp := range cross.AllExperiments() {
		fmt.Println(exp.String())
	}
}
