// Command crossbench regenerates the paper's evaluation section: every
// table and figure of §V, with paper-reported values printed next to
// the reproduction's measurements. It is also the repo's perf oracle:
// -sweep lowers the full {param set × device × core count × workload}
// cross-product — every registered device, TPU generations and GPU
// parts alike — in parallel, and -compare diffs a fresh sweep against a
// committed baseline, exiting non-zero on regression (the CI gate).
// -versus prices named targets ("TPUv6e-16,H100-8") head-to-head on
// every workload: the cross-hardware comparison.
//
// Usage:
//
//	crossbench                 # run everything (paper order)
//	crossbench -list           # list experiment identifiers
//	crossbench -experiment id  # run one experiment ("Table V", "fig11b", …)
//	crossbench -scaling        # core-count scaling sweep (1/2/4/8 cores)
//	crossbench -scaling -device TPUv5p        # any registered device (TPU or GPU)
//	crossbench -versus TPUv6e-16,H100-8 -set D        # cross-hardware head-to-head
//	crossbench -versus TPUv6e-16,H100-8 -set D -json  # machine-readable comparison
//	crossbench -versus A100-80GB-8,H100-8 -out versus.json
//	crossbench -sweep -parallel 8 -json       # full sweep, machine-readable
//	crossbench -compare BENCH_baseline.json   # fresh sweep vs baseline; exit 1 on regression
//	crossbench -compare BENCH_baseline.json -threshold 0.01
//	crossbench -compare BENCH_baseline.json -metric overlapped  # gate only the overlap-aware column
//	crossbench -compare BENCH_baseline.json -out sweep.json  # keep the fresh sweep too
//	crossbench -hostbench                     # measure host kernels (real ns/op + allocs/op)
//	crossbench -hostbench -compare BENCH_host.json -threshold 0.25  # wall-clock gate
//	crossbench -hostbench -compare BENCH_host.json -out hostbench.json
//	crossbench -calib                         # calibration: fit the model's free constants to ground truth
//	crossbench -calib -compare BENCH_calib.json -threshold 0.10     # model-drift gate
//	crossbench -calib -compare BENCH_calib.json -out calib.json
//	crossbench -calib -repeats 9 -parallel 8  # more timing samples, wider fitter pool
//	crossbench -refresh-baselines             # rewrite BENCH_baseline/BENCH_host/BENCH_calib .json in one run
//	crossbench -serve                         # serving simulator: 4-pod fleet at 70% capacity
//	crossbench -serve -rate 2000 -pods 8 -policy jsq -json
//	crossbench -serve -device TPUv4 -set A -batch 8 -delay 0.001 -horizon 0.5
//	crossbench -serve -mix "HE-Mult=0.6,Rotate=0.3,MNIST=0.1" -seed 42
//	crossbench -serve -overlap                # price batches at the overlap-aware makespan
//	crossbench -serve -faults -mtbf 0.05 -retries 3 -hedge   # fault injection + recovery
//	crossbench -serve -faults -deadline 0.02 -shed 32        # deadlines + load shedding
//	crossbench -serve -faults -straggler 8 -fault-seed 9     # transient stragglers
//	crossbench -serve -fleet "TPUv6e:1:4+H100:1:2"           # heterogeneous fleet + cost section
//	crossbench -serve -fleet "TPUv6e:1:4+H100:1:2" -policy cheapest
//	crossbench -serve -trace arrivals.csv     # replay a recorded arrival trace
//	crossbench -serve -stats streaming -rate 50000 -horizon 30  # O(1)-memory long horizon
//	crossbench -serve -classes "interactive:10:0.02,batch:0" -mix "HE-Mult=0.6@interactive,MNIST=0.4@batch"
//	crossbench -chaos                         # goodput vs crash-MTBF grid (availability curve)
//	crossbench -chaos -retries 3 -hedge -deadline 0.05 -json
//	crossbench -plan -slo 0.02                # capacity plan: req/s/$ ladder of the base device
//	crossbench -plan -slo 0.02 -fleets "TPUv6e:1:4,TPUv6e:1:2+H100:1:1"
//	crossbench -json [...]     # machine-readable output (any mode)
//
// With -json the tool emits JSON instead of the formatted tables:
// -list prints a string array of identifiers; -sweep prints the sweep
// records (deterministic and stably ordered — bit-identical at every
// -parallel value, so the output is committable as a baseline);
// -compare prints the classified diff; every other mode prints Report
// objects ({"ID","Title","Body","Notes"}).
//
// Run with: go run ./cmd/crossbench [flags]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cross"
	"cross/internal/harness"
)

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
}

// readBaseline loads a committed sweep (BENCH_baseline.json).
func readBaseline(path string) ([]cross.SweepRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []cross.SweepRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s holds no sweep records", path)
	}
	return recs, nil
}

// readHostBaseline loads a committed host benchmark (BENCH_host.json).
// Both schemas parse: the current File form ({"env": …, "records": …})
// and the legacy bare record array, which diffs with no environment
// metadata (every env check skips).
func readHostBaseline(path string) (cross.HostBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return cross.HostBenchFile{}, err
	}
	var file cross.HostBenchFile
	if err := json.Unmarshal(data, &file); err == nil && len(file.Records) > 0 {
		return file, nil
	}
	var recs []cross.HostBenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return cross.HostBenchFile{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(recs) == 0 {
		return cross.HostBenchFile{}, fmt.Errorf("%s holds no host benchmark records", path)
	}
	return cross.HostBenchFile{Records: recs}, nil
}

// readCalibBaseline loads a committed calibration report
// (BENCH_calib.json).
func readCalibBaseline(path string) (*cross.CalibReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep cross.CalibReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Records) == 0 {
		return nil, fmt.Errorf("%s holds no calibration records", path)
	}
	return &rep, nil
}

// runHostBench handles -hostbench (optionally with -compare/-out):
// measure the host kernels, write/print the records, and when a
// baseline is given diff against it, exiting 1 on regression.
func runHostBench(compare string, threshold float64, out string, asJSON bool) {
	file, err := cross.HostBenchRunFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	if out != "" {
		if err := writeJSON(out, file); err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
	}
	if compare == "" {
		if asJSON {
			emitJSON(file)
			return
		}
		for _, r := range file.Records {
			fmt.Printf("%-28s %12.0f ns/op %8.3g allocs/op\n", r.ID, r.NsPerOp, r.AllocsPerOp)
		}
		return
	}
	baseline, err := readHostBaseline(compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	diff := cross.HostBenchDiffFiles(baseline, file, threshold)
	if asJSON {
		emitJSON(diff)
	} else {
		fmt.Print(diff.Summary())
	}
	if diff.HasRegressions() {
		os.Exit(1)
	}
}

// runCalib handles -calib (optionally with -compare/-out): run the
// calibration harness, write/print the report, and when a baseline is
// given diff against it, exiting 1 on model drift.
func runCalib(compare string, threshold float64, cfg cross.CalibConfig, out string, asJSON bool) {
	rep, err := cross.Calib(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	if out != "" {
		if err := writeJSON(out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
	}
	if compare == "" {
		if asJSON {
			emitJSON(rep)
			return
		}
		fmt.Print(rep.Summary())
		return
	}
	baseline, err := readCalibBaseline(compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	diff := cross.CalibDiff(baseline, rep, threshold)
	if asJSON {
		emitJSON(diff)
	} else {
		fmt.Print(diff.Summary())
	}
	if diff.HasRegressions() {
		os.Exit(1)
	}
}

// runRefreshBaselines rewrites all three committed baselines from one
// fresh run — the single documented workflow for intentional model or
// hardware changes (DESIGN.md §15).
func runRefreshBaselines(parallel, repeats int) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	recs, err := cross.Sweep(cross.SweepConfig{Parallel: parallel})
	if err != nil {
		fail(err)
	}
	if err := writeJSON("BENCH_baseline.json", recs); err != nil {
		fail(err)
	}
	fmt.Printf("BENCH_baseline.json  %d sweep record(s)\n", len(recs))

	file, err := cross.HostBenchRunFile()
	if err != nil {
		fail(err)
	}
	if err := writeJSON("BENCH_host.json", file); err != nil {
		fail(err)
	}
	fmt.Printf("BENCH_host.json      %d host record(s), %s\n", len(file.Records), file.Env.CPUModel)

	rep, err := cross.Calib(cross.CalibConfig{Repeats: repeats, Parallel: fitWorkers(parallel)})
	if err != nil {
		fail(err)
	}
	if err := writeJSON("BENCH_calib.json", rep); err != nil {
		fail(err)
	}
	fmt.Printf("BENCH_calib.json     %d calibration record(s)\n", len(rep.Records))
	fmt.Print(rep.Summary())
}

// fitWorkers maps the -parallel convention (0 = NumCPU) onto the
// calibration fitter's worker count.
func fitWorkers(parallel int) int {
	if parallel == 0 {
		return runtime.NumCPU()
	}
	return parallel
}

// parseMix parses "-mix HE-Mult=0.6,Rotate=0.3,MNIST=0.1" into the
// serve mix schema. A weight may carry an SLO-class binding after
// "@": "HE-Mult=0.6@interactive" (the class must appear in -classes).
func parseMix(s string) ([]cross.ServeMixEntry, error) {
	var mix []cross.ServeMixEntry
	for _, part := range strings.Split(s, ",") {
		wl, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not workload=weight", part)
		}
		weight, class, _ := strings.Cut(weight, "@")
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil {
			return nil, fmt.Errorf("mix entry %q: %w", part, err)
		}
		mix = append(mix, cross.ServeMixEntry{Workload: wl, Weight: w, Class: class})
	}
	return mix, nil
}

// parseClasses parses "-classes name:priority[:deadline_s[:queue_limit]]"
// entries, comma-separated: "interactive:10:0.02,batch:0".
func parseClasses(s string) ([]cross.ServeSLOClass, error) {
	var classes []cross.ServeSLOClass
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("class %q is not name:priority[:deadline_s[:queue_limit]]", part)
		}
		c := cross.ServeSLOClass{Name: fields[0]}
		var err error
		if c.Priority, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("class %q priority: %w", part, err)
		}
		if len(fields) >= 3 {
			if c.DeadlineS, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("class %q deadline: %w", part, err)
			}
		}
		if len(fields) == 4 {
			if c.QueueLimit, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("class %q queue limit: %w", part, err)
			}
		}
		classes = append(classes, c)
	}
	return classes, nil
}

// writeJSON writes any record to path with the stdout JSON encoding.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runServe handles -serve: execute one serving scenario and emit its
// record.
func runServe(cfg cross.ServeConfig, out string, asJSON bool) {
	r, err := cross.Serve(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	if out != "" {
		if err := writeJSON(out, r); err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
	}
	if asJSON {
		emitJSON(r)
		return
	}
	fmt.Print(r.Summary())
}

// runChaos handles -chaos: sweep the serving scenario across the
// default crash-MTBF grid and emit the availability curve. The chaos
// cells reuse the serve fault flags for recovery knobs; the MTBF axis
// itself comes from the grid (any -mtbf value seeds the base config's
// other defaults but is overridden per cell).
func runChaos(cc cross.ServeChaosConfig, out string, asJSON bool) {
	r, err := cross.ServeChaos(cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	if out != "" {
		if err := writeJSON(out, r); err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
	}
	if asJSON {
		emitJSON(r)
		return
	}
	fmt.Print(r.Summary())
}

// runPlan handles -plan: sweep the candidate fleets for the highest
// rate meeting the p99 target and emit the req/s/$ frontier.
func runPlan(pc cross.ServePlanConfig, out string, asJSON bool) {
	r, err := cross.ServePlan(pc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossbench:", err)
		os.Exit(1)
	}
	if out != "" {
		if err := writeJSON(out, r); err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
	}
	if asJSON {
		emitJSON(r)
		return
	}
	fmt.Print(r.Summary())
}

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	experiment := flag.String("experiment", "", "run a single experiment by identifier")
	scaling := flag.Bool("scaling", false, "run only the core-count scaling sweep")
	device := flag.String("device", "TPUv6e", "device for -scaling and -serve ("+cross.TargetNames()+")")
	versus := flag.String("versus", "", `cross-hardware comparison: comma-separated targets ("TPUv6e-16,H100-8"), priced on every workload`)
	sweepMode := flag.Bool("sweep", false, "run the full cross-product perf sweep")
	hostbenchMode := flag.Bool("hostbench", false, "measure host kernels (real ns/op + allocs/op); with -compare, diff against a BENCH_host.json baseline")
	calibMode := flag.Bool("calib", false, "run the calibration harness: measure ground truth, fit the model's free constants, report per-kernel model error; with -compare, gate model drift against a BENCH_calib.json baseline")
	repeats := flag.Int("repeats", 0, "calib: raw timing samples per host measurement point (default 5)")
	refreshBaselines := flag.Bool("refresh-baselines", false, "rewrite all three committed baselines (BENCH_baseline.json, BENCH_host.json, BENCH_calib.json) from one fresh run")
	serveMode := flag.Bool("serve", false, "run the discrete-event serving simulator")
	planMode := flag.Bool("plan", false, `capacity planner: highest req/s meeting -slo per candidate fleet, ranked by req/s/$`)
	fleet := flag.String("fleet", "", `serve: heterogeneous fleet "device:cores:count[:dollar_hr]" groups joined by "+" (replaces -device/-pods/-cores)`)
	fleets := flag.String("fleets", "", `plan: comma-separated candidate fleet specs (default 1/2/4/8-pod ladder of -device)`)
	slo := flag.Float64("slo", 0, "plan: target p99 latency in seconds")
	classes := flag.String("classes", "", `serve: SLO classes "name:priority[:deadline_s[:queue_limit]]", comma-separated; bind mix entries with weight@class`)
	trace := flag.String("trace", "", "serve: replay arrivals from a JSON or CSV trace file instead of the Poisson source")
	stats := flag.String("stats", "", "serve: latency statistics mode — stored (exact, default) or streaming (O(1) memory for long horizons)")
	rate := flag.Float64("rate", 0, "serve: offered load in requests/s (0 = 70% of fleet capacity)")
	pods := flag.Int("pods", 0, "serve: fleet size in pods (default 4)")
	podCores := flag.Int("cores", 0, "serve: cores per pod (default 1)")
	policy := flag.String("policy", "", "serve: dispatch policy (round-robin, least-loaded, jsq, cheapest)")
	seed := flag.Int64("seed", 0, "serve: arrival PRNG seed (default 1)")
	horizon := flag.Float64("horizon", 0, "serve: arrival window in simulated seconds (default 0.25)")
	batch := flag.Int("batch", 0, "serve: max batch size per launch (default 8; 1 disables batching)")
	delay := flag.Float64("delay", 0, "serve: max queue delay in seconds an idle pod holds a non-full batch (default 0)")
	mix := flag.String("mix", "", `serve: workload mix as "HE-Mult=0.6,Rotate=0.3,MNIST=0.1" (default mixed operator+MNIST traffic)`)
	set := flag.String("set", "", `parameter-set letter A-D for -serve (default "B") and -versus (default "D")`)
	overlap := flag.Bool("overlap", false, "serve: price service times at the overlap-aware OverlappedTotal instead of the serial total")
	faultsMode := flag.Bool("faults", false, "serve: enable the deterministic fault model and recovery machinery (DESIGN.md §16)")
	chaosMode := flag.Bool("chaos", false, "chaos sweep: rerun the serving scenario across a crash-MTBF grid and report the availability curve")
	faultSeed := flag.Int64("fault-seed", 0, "faults: injector PRNG seed, independent of -seed (default 1)")
	mtbf := flag.Float64("mtbf", 0, "faults: per-pod mean time between crashes in seconds (0 = no crashes)")
	mttr := flag.Float64("mttr", 0, "faults: per-pod mean time to recover in seconds (default mtbf/10)")
	straggler := flag.Float64("straggler", 0, "faults: transient-straggler slowdown factor ≥ 1 (0 = off)")
	batcherr := flag.Float64("batcherr", 0, "faults: i.i.d. probability that a batch launch fails transiently")
	deadline := flag.Float64("deadline", 0, "faults: per-request deadline in seconds; timed-out requests never count completed (0 = none)")
	retries := flag.Int("retries", 0, "faults: max re-dispatches for a request lost to a crash or batch error")
	hedge := flag.Bool("hedge", false, "faults: hedged dispatch — copy a slow batch to an idle pod, first finisher wins")
	shed := flag.Int("shed", 0, "faults: shed arrivals when the dispatched pod already queues this many requests (0 = unbounded)")
	compare := flag.String("compare", "", "run a fresh sweep (or host benchmark with -hostbench) and diff it against a baseline JSON file; exit 1 on regression")
	metric := flag.String("metric", "all", "sweep -compare: gate on one latency column — total, overlapped, or all")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = NumCPU); output is identical at every value")
	threshold := flag.Float64("threshold", 0.005, "fractional regression threshold for -compare (0.005 = 0.5%; -hostbench defaults to 0.25, -calib to 0.10)")
	out := flag.String("out", "", "also write the fresh records JSON to this file (-sweep, -hostbench or -compare); lets CI keep the artifact without running the measurement twice")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of formatted tables")
	flag.Parse()

	deviceSet, thresholdSet, parallelSet, outSet, metricSet, setSet, repeatsSet := false, false, false, false, false, false, false
	serveFlagSet, faultFlagSet := "", ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "device":
			deviceSet = true
		case "threshold":
			thresholdSet = true
		case "parallel":
			parallelSet = true
		case "out":
			outSet = true
		case "metric":
			metricSet = true
		case "set":
			setSet = true
		case "repeats":
			repeatsSet = true
		case "rate", "pods", "cores", "policy", "seed", "horizon", "batch", "delay", "mix", "overlap", "classes":
			serveFlagSet = f.Name
		case "fault-seed", "mtbf", "mttr", "straggler", "batcherr", "deadline", "retries", "hedge", "shed":
			faultFlagSet = f.Name
		}
	})
	// -hostbench and -calib pair with -compare (their respective gates);
	// every other top-level mode is mutually exclusive.
	exclusive := 0
	for _, on := range []bool{*scaling, *sweepMode, *hostbenchMode, *calibMode, *refreshBaselines, *serveMode, *chaosMode, *planMode,
		*compare != "" && !*hostbenchMode && !*calibMode, *list, *experiment != "", *versus != ""} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(os.Stderr, "crossbench: -scaling, -sweep, -hostbench, -calib, -refresh-baselines, -serve, -chaos, -plan, -compare, -versus, -list and -experiment are mutually exclusive (except -hostbench/-calib with -compare)")
		os.Exit(1)
	}
	if deviceSet && !*scaling && !*serveMode && !*chaosMode && !*planMode {
		fmt.Fprintln(os.Stderr, "crossbench: -device only applies to -scaling, -serve, -chaos and -plan")
		os.Exit(1)
	}
	if setSet && !*serveMode && !*chaosMode && !*planMode && *versus == "" {
		fmt.Fprintln(os.Stderr, "crossbench: -set only applies to -serve, -chaos, -plan and -versus")
		os.Exit(1)
	}
	if thresholdSet && *compare == "" {
		fmt.Fprintln(os.Stderr, "crossbench: -threshold only applies to -compare")
		os.Exit(1)
	}
	if parallelSet && (*hostbenchMode || (!*sweepMode && !*serveMode && !*chaosMode && !*planMode && !*calibMode && !*refreshBaselines && *compare == "")) {
		fmt.Fprintln(os.Stderr, "crossbench: -parallel only applies to -sweep, -serve, -chaos, -plan, -calib, -refresh-baselines and sweep -compare")
		os.Exit(1)
	}
	if outSet && !*sweepMode && !*hostbenchMode && !*calibMode && !*serveMode && !*chaosMode && !*planMode && *compare == "" && *versus == "" {
		fmt.Fprintln(os.Stderr, "crossbench: -out only applies to -sweep, -hostbench, -calib, -serve, -chaos, -plan, -compare and -versus")
		os.Exit(1)
	}
	if repeatsSet && !*calibMode && !*refreshBaselines {
		fmt.Fprintln(os.Stderr, "crossbench: -repeats only applies to -calib and -refresh-baselines")
		os.Exit(1)
	}
	if serveFlagSet != "" && !*serveMode && !*chaosMode && !*planMode {
		fmt.Fprintf(os.Stderr, "crossbench: -%s only applies to -serve, -chaos and -plan\n", serveFlagSet)
		os.Exit(1)
	}
	if *fleet != "" && !*serveMode && !*chaosMode {
		fmt.Fprintln(os.Stderr, "crossbench: -fleet only applies to -serve and -chaos (-plan takes -fleets)")
		os.Exit(1)
	}
	if *trace != "" && !*serveMode {
		fmt.Fprintln(os.Stderr, "crossbench: -trace only applies to -serve")
		os.Exit(1)
	}
	if *stats != "" && !*serveMode {
		fmt.Fprintln(os.Stderr, "crossbench: -stats only applies to -serve")
		os.Exit(1)
	}
	if (*fleets != "" || *slo != 0) && !*planMode {
		fmt.Fprintln(os.Stderr, "crossbench: -fleets and -slo only apply to -plan")
		os.Exit(1)
	}
	if *faultsMode && !*serveMode {
		fmt.Fprintln(os.Stderr, "crossbench: -faults only applies to -serve (-chaos implies it)")
		os.Exit(1)
	}
	if faultFlagSet != "" && !*faultsMode && !*chaosMode {
		fmt.Fprintf(os.Stderr, "crossbench: -%s only applies to -serve -faults and -chaos\n", faultFlagSet)
		os.Exit(1)
	}
	if metricSet && (*compare == "" || *hostbenchMode || *calibMode) {
		fmt.Fprintln(os.Stderr, "crossbench: -metric only applies to sweep -compare")
		os.Exit(1)
	}
	gateMetric := ""
	switch *metric {
	case "all":
	case "total":
		gateMetric = cross.SweepMetricTotal
	case "overlapped":
		gateMetric = cross.SweepMetricOverlapped
	default:
		fmt.Fprintf(os.Stderr, "crossbench: -metric must be total, overlapped or all, got %q\n", *metric)
		os.Exit(1)
	}

	if *serveMode || *chaosMode || *planMode {
		cfg := cross.ServeConfig{
			Seed: *seed, Set: *set, Pods: *pods, CoresPerPod: *podCores,
			Policy: *policy, Rate: *rate, HorizonS: *horizon,
			MaxBatch: *batch, MaxDelayS: *delay, Overlap: *overlap, Parallel: *parallel,
			TracePath: *trace, Stats: *stats,
		}
		if deviceSet {
			cfg.Spec = *device
		}
		if *fleet != "" {
			f, err := cross.ServeParseFleet(*fleet)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
			cfg.Fleet = f
			cfg.Spec, cfg.Pods, cfg.CoresPerPod = "", 0, 0
		}
		if *mix != "" {
			m, err := parseMix(*mix)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
			cfg.Mix = m
		}
		if *classes != "" {
			cs, err := parseClasses(*classes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
			cfg.Classes = cs
		}
		if *planMode {
			pc := cross.ServePlanConfig{Base: cfg, TargetP99S: *slo}
			if *fleets != "" {
				fs, err := cross.ServeParseFleets(*fleets)
				if err != nil {
					fmt.Fprintln(os.Stderr, "crossbench:", err)
					os.Exit(1)
				}
				pc.Fleets = fs
			}
			runPlan(pc, *out, *asJSON)
			return
		}
		if *faultsMode || *chaosMode {
			cfg.Faults = &cross.FaultConfig{
				Seed: *faultSeed, MTBFS: *mtbf, MTTRS: *mttr,
				StragglerFactor: *straggler, BatchErrorProb: *batcherr,
				DeadlineS: *deadline, MaxRetries: *retries,
				Hedge: *hedge, QueueLimit: *shed,
			}
		}
		if *chaosMode {
			runChaos(cross.ServeChaosConfig{Serve: cfg}, *out, *asJSON)
		} else {
			runServe(cfg, *out, *asJSON)
		}
		return
	}

	if *hostbenchMode {
		th := *threshold
		if !thresholdSet {
			th = 0.25 // generous: shared CI runners are noisy
		}
		runHostBench(*compare, th, *out, *asJSON)
		return
	}

	if *calibMode {
		th := *threshold
		if !thresholdSet {
			th = 0.10 // published-source drift is deterministic; 10% absolute model-error growth gates
		}
		cfg := cross.CalibConfig{Repeats: *repeats, Parallel: fitWorkers(*parallel)}
		runCalib(*compare, th, cfg, *out, *asJSON)
		return
	}

	if *refreshBaselines {
		runRefreshBaselines(*parallel, *repeats)
		return
	}

	if *sweepMode {
		recs, err := cross.Sweep(cross.SweepConfig{Parallel: *parallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
		if *out != "" {
			if err := writeJSON(*out, recs); err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
		}
		if *asJSON {
			emitJSON(recs)
			return
		}
		for _, r := range recs {
			fmt.Printf("%-32s %12.4g s  (overlapped %.4g s, collective %.4g s, %d kernel launches)\n",
				r.ID, r.TotalS, r.OverlappedS, r.CollectiveS, r.Kernels.Total())
		}
		return
	}

	if *compare != "" {
		baseline, err := readBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
		recs, err := cross.Sweep(cross.SweepConfig{Parallel: *parallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
		if *out != "" {
			if err := writeJSON(*out, recs); err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
		}
		diff := cross.SweepDiff(baseline, recs, *threshold).FilterMetric(gateMetric)
		if *asJSON {
			emitJSON(diff)
		} else {
			fmt.Print(diff.Summary())
		}
		if diff.HasRegressions() {
			os.Exit(1)
		}
		return
	}

	if *versus != "" {
		targets := strings.Split(*versus, ",")
		for i := range targets {
			targets[i] = strings.TrimSpace(targets[i])
		}
		vset := *set
		if vset == "" {
			vset = "D"
		}
		v, err := harness.Versus(targets, vset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
		if *out != "" {
			if err := writeJSON(*out, v); err != nil {
				fmt.Fprintln(os.Stderr, "crossbench:", err)
				os.Exit(1)
			}
		}
		if *asJSON {
			emitJSON(v)
			return
		}
		fmt.Println(v.Report().String())
		return
	}

	if *scaling {
		r, err := harness.CoreScalingOn(*device)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossbench:", err)
			os.Exit(1)
		}
		if *asJSON {
			emitJSON(r)
			return
		}
		fmt.Println(r.String())
		return
	}

	if *list {
		ids := cross.ExperimentIDs()
		if *asJSON {
			emitJSON(ids)
			return
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	if *experiment != "" {
		exp, err := cross.ExperimentByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			emitJSON(exp)
			return
		}
		fmt.Println(exp.String())
		return
	}

	all := cross.AllExperiments()
	if *asJSON {
		emitJSON(all)
		return
	}
	fmt.Println("CROSS reproduction — regenerating the paper's evaluation (§V)")
	fmt.Println("simulated TPU latencies are model estimates; compare shapes, not absolutes")
	fmt.Println()
	for _, exp := range all {
		fmt.Println(exp.String())
	}
}
