// Package cross is a Go reproduction of "Leveraging ASIC AI Chips for
// Homomorphic Encryption" (HPCA 2026): the CROSS compiler framework
// that maps CKKS homomorphic-encryption kernels onto TPU-class AI
// accelerators via Basis-Aligned Transformation (BAT, high-precision
// modular arithmetic → dense INT8 matrix multiplication) and
// Memory-Aligned Transformation (MAT, offline-embedded data
// reorderings → layout-invariant kernels).
//
// The public API has three layers:
//
//   - HE layer: Context bundles a full functional RNS-CKKS instance
//     (encode → encrypt → evaluate → decrypt), running bit-exactly on
//     the CPU.
//   - Compiler layer: Compile(target, params) returns a Compiler for
//     any Target — a simulated TPU tensor core (Device), a multi-core
//     slice (Pod), a GPU (GPUDevice) or an NVLink node (GPUNode); all
//     satisfy the same interface and share one lowering code path, and
//     the device registry (TargetByName) instantiates any of them from
//     a name + core count. Kernel lowerings produce Schedule values:
//     structured artifacts carrying total latency, the per-category
//     breakdown, kernel-invocation counts, and shard/collective
//     metadata — plus the overlap-aware latency pair: every lowering
//     is also recorded as a dependency DAG of timed segments
//     (SegDAG) executed by a discrete-event engine, so a Schedule
//     reports both SerialTotal (the paper-faithful serial model) and
//     OverlappedTotal (collectives and HBM streaming hidden behind
//     compute; DESIGN.md §13). NewProgram composes multi-operator HE
//     workloads (mult → rotate → bootstrap → …) into one costed,
//     memoized schedule. The legacy Cost* float methods remain as
//     thin deprecated wrappers over Schedule.Total.
//   - Experiments layer: Experiment/AllExperiments regenerate every
//     table and figure of the paper's §V with paper-vs-measured rows,
//     plus the beyond-paper core-count scaling sweep.
//   - Sweep layer: Sweep lowers the full {param set × TPU spec × pod
//     size × workload} cross-product on a worker pool and emits
//     deterministic records; SweepDiff classifies regressions against
//     a committed baseline — the CI perf gate (crossbench -sweep /
//     -compare).
//   - Host perf layer: HostBench measures the functional CPU kernels'
//     real ns/op and steady-state allocs/op at fixed sizes;
//     HostBenchDiff gates wall time against a generous threshold and
//     allocations strictly at zero drift (crossbench -hostbench,
//     BENCH_host.json).
//   - Serving layer: Serve runs the discrete-event serving simulator —
//     an open-loop arrival process over a workload mix, dynamic
//     batching, and fleet dispatch across M pods — and returns one
//     deterministic record of offered load, achieved throughput, pod
//     utilization, queue depth, and tail latency (crossbench -serve).
//     FaultConfig adds the deterministic fault model (pod
//     crash/recover, stragglers, batch errors) and recovery machinery
//     (deadlines, retries, hedging, load shedding, heartbeat
//     detection); ServeChaos sweeps goodput across a crash-MTBF grid
//     (crossbench -serve -faults, -chaos; DESIGN.md §16).
//   - Calibration layer: Calib pairs every measurable kernel latency
//     (host wall clock plus the paper's published TPU/GPU figures)
//     with the simulator's prediction for the same work, fits the
//     model's free constants (Calibration) by deterministic least
//     squares, and reports per-kernel model error; CalibDiff gates
//     model drift against the committed BENCH_calib.json (crossbench
//     -calib).
//
// See DESIGN.md (§ "Schedule IR & Targets") for the system inventory
// and EXPERIMENTS.md for the reproduction results.
package cross

import (
	"fmt"

	"cross/internal/bat"
	"cross/internal/calib"
	"cross/internal/ckks"
	icross "cross/internal/cross"
	"cross/internal/faults"
	"cross/internal/gpusim"
	"cross/internal/harness"
	"cross/internal/hostbench"
	"cross/internal/mat"
	"cross/internal/modarith"
	"cross/internal/ring"
	"cross/internal/serve"
	"cross/internal/sweep"
	"cross/internal/tpusim"
	"cross/internal/workload"
)

// ---- Compiler layer ----

// Params is a CKKS security/performance configuration (paper Tab. IV).
type Params = icross.Params

// Compiler lowers HE kernels onto a simulated TPU core.
type Compiler = icross.Compiler

// Device is one simulated TPU tensor core.
type Device = tpusim.Device

// DeviceSpec describes a TPU generation.
type DeviceSpec = tpusim.Spec

// Calibration holds the model's free constants — per-spec launch
// overhead, effective-bandwidth fractions, NTT efficiency — carried on
// DeviceSpec/GPUSpec. The zero value resolves to the hand-picked
// defaults (bit-identical pricing); Calib fits them to ground truth.
type Calibration = tpusim.Calibration

// ReduceAlgorithm selects the modular-reduction flavour (Fig. 13).
type ReduceAlgorithm = modarith.ReduceAlgorithm

// Reduction algorithms.
const (
	Barrett    = modarith.Barrett
	Montgomery = modarith.Montgomery
	Shoup      = modarith.Shoup
	BATLazy    = modarith.BATLazy
)

// Parameter sets from the paper's Tab. IV.
var (
	SetA = icross.SetA
	SetB = icross.SetB
	SetC = icross.SetC
	SetD = icross.SetD
)

// TPU generation specs (Tab. IV).
var (
	TPUv4  = tpusim.TPUv4
	TPUv5e = tpusim.TPUv5e
	TPUv5p = tpusim.TPUv5p
	TPUv6e = tpusim.TPUv6e
)

// NewDevice instantiates a simulated tensor core.
func NewDevice(spec DeviceSpec) *Device { return tpusim.NewDevice(spec) }

// NewCompiler builds a CROSS compiler for a device and parameter set.
//
// Deprecated: use Compile, which accepts any Target (devices and pods).
func NewCompiler(dev *Device, p Params) (*Compiler, error) { return icross.New(dev, p) }

// ---- Target / Schedule IR layer ----

// Target is the hardware a Compiler lowers onto. Both *Device and
// *Pod satisfy it; the compiler's single lowering code path shards
// independent work across Target.NumCores() and charges collective
// cost through the Target's interconnect methods. A Device is the
// 1-core degenerate case, bit-identical to a 1-core Pod.
type Target = icross.Target

// Schedule is the compiler's lowering artifact: one operator (or a
// whole Program) lowered onto a Target, with total latency, the
// Fig. 12-style per-category breakdown, kernel-invocation counts, and
// shard/collective metadata.
type Schedule = icross.Schedule

// KernelCounts tallies the kernel launches of one Schedule.
type KernelCounts = icross.KernelCounts

// SegDAG is the dependency DAG of timed segments behind a Schedule's
// OverlappedTotal: nodes are compute / VMEM / HBM / ICI segments,
// edges are execution-order dependencies, and Execute returns the
// DAG's makespan under the deterministic discrete-event engine
// (DESIGN.md §13).
type SegDAG = icross.SegDAG

// SegNode is one timed segment of a SegDAG.
type SegNode = icross.SegNode

// SegKind classifies the resource a SegDAG segment occupies.
type SegKind = icross.SegKind

// Segment kinds.
const (
	SegCompute = icross.SegCompute
	SegVMEM    = icross.SegVMEM
	SegHBM     = icross.SegHBM
	SegICI     = icross.SegICI
)

// NewSegDAG returns an empty segment DAG (hand-built DAGs are how the
// engine's critical-path semantics are unit-tested).
func NewSegDAG() *SegDAG { return icross.NewSegDAG() }

// Program composes multi-operator HE workloads into one costed,
// memoized schedule: NewProgram(c).HEMult().Rotate(1).Batch(64).Lower().
type Program = icross.Program

// BootstrapSchedule is the operator budget of one packed bootstrapping.
type BootstrapSchedule = icross.BootstrapSchedule

// Compile builds a CROSS compiler for any lowering target — a tensor
// core or a pod — and parameter set.
func Compile(t Target, p Params) (*Compiler, error) { return icross.Compile(t, p) }

// NewProgram starts an empty workload program on a compiler.
func NewProgram(c *Compiler) *Program { return icross.NewProgram(c) }

// DefaultBootstrapSchedule returns the MAD packed-bootstrapping
// operator budget for a parameter set.
func DefaultBootstrapSchedule(p Params) BootstrapSchedule {
	return icross.DefaultBootstrapSchedule(p)
}

// ---- Pod / sharded-lowering layer ----

// Pod is a multi-core TPU slice: N tensor cores joined by the
// inter-chip interconnect, with ring-collective cost models
// (AllReduceTime, BroadcastTime, …).
type Pod = tpusim.Pod

// ShardedCompiler is the legacy pod-lowering handle. The sharded
// lowering now lives in Compiler itself (a Pod is just another
// Target), so this is a thin compatibility wrapper.
//
// Deprecated: use Compile with a *Pod target.
type ShardedCompiler = icross.ShardedCompiler

// NewPod instantiates an n-core pod of one TPU generation.
func NewPod(spec DeviceSpec, cores int) (*Pod, error) { return tpusim.NewPod(spec, cores) }

// NewShardedCompiler builds the pod-scale CROSS lowering for a
// parameter set.
//
// Deprecated: use Compile(pod, p) — one lowering API for cores and
// pods.
func NewShardedCompiler(pod *Pod, p Params) (*ShardedCompiler, error) {
	return icross.NewSharded(pod, p)
}

// ---- GPU backend & device registry ----

// GPUSpec describes a GPU part (A100/H100 class): native figures —
// SMs, tensor/CUDA-core throughput, HBM/L2/SMEM bandwidths, NVLink —
// that project onto the same roofline the TPU backend prices.
type GPUSpec = gpusim.Spec

// GPUDevice is one simulated GPU (the 1-core degenerate Target).
type GPUDevice = gpusim.Device

// GPUNode is N GPUs joined by NVLink (ring) or NVSwitch (all-to-all),
// with topology-aware collective cost models.
type GPUNode = gpusim.Node

// GPUTopology selects the node interconnect (ring vs NVSwitch).
type GPUTopology = gpusim.Topology

// GPU part specs.
var (
	A100_40GB = gpusim.A100_40GB
	A100_80GB = gpusim.A100_80GB
	H100      = gpusim.H100
)

// NewGPUDevice instantiates one simulated GPU.
func NewGPUDevice(spec GPUSpec) *GPUDevice { return gpusim.NewDevice(spec) }

// NewGPUNode instantiates an n-GPU node of one part.
func NewGPUNode(spec GPUSpec, gpus int) (*GPUNode, error) { return gpusim.NewNode(spec, gpus) }

// TargetInfo is one device-registry entry: a part name, its hardware
// family ("tpu", "gpu"), its representative scale-out degree, and a
// factory from core count to Target.
type TargetInfo = icross.TargetInfo

// RegisteredTargets lists every registered device in registration
// order (TPU generations first, then GPU parts).
func RegisteredTargets() []TargetInfo { return icross.RegisteredTargets() }

// TargetByName instantiates a registered device at a core count —
// TargetByName("H100", 8) prices an 8-GPU NVSwitch node exactly like
// TargetByName("TPUv6e", 8) prices an 8-core pod.
func TargetByName(name string, cores int) (Target, error) { return icross.TargetByName(name, cores) }

// TargetNames renders the registered device names for error messages
// and CLI help.
func TargetNames() string { return icross.TargetNames() }

// ---- HE layer ----

// Context bundles the functional CKKS instance: parameters, keys,
// encoder, encryptor, decryptor and evaluator.
type Context struct {
	Params    *ckks.Parameters
	Encoder   *ckks.Encoder
	Encryptor *ckks.Encryptor
	Decryptor *ckks.Decryptor
	Evaluator *ckks.Evaluator

	sk *ckks.SecretKey
	kg *ckks.KeyGenerator
}

// Ciphertext is an encrypted slot vector.
type Ciphertext = ckks.Ciphertext

// Plaintext is an encoded slot vector.
type Plaintext = ckks.Plaintext

// LinearTransform is a BSGS-evaluated plaintext linear map over slots.
type LinearTransform = ckks.LinearTransform

// Evaluator executes CKKS operators (exposed for its full method set:
// Add, MulRelin, Rescale, Rotate, RotateHoisted, EvalPoly, InnerSum,
// EvalLinearTransform, ...).
type Evaluator = ckks.Evaluator

// InnerSumRotations lists the rotation keys Evaluator.InnerSum needs.
func InnerSumRotations(step, count int) []int { return ckks.InnerSumRotations(step, count) }

// ContextOptions configures NewContext.
type ContextOptions struct {
	LogN     int   // ring degree exponent (default 12)
	LogScale uint  // bits per prime / scale (default 28, the paper's)
	Limbs    int   // ciphertext modulus chain length (default 6)
	Dnum     int   // key-switching digits (default 3)
	Seed     int64 // PRNG seed (default 1)
	// Rotations lists the slot rotations to generate Galois keys for;
	// conjugation is always included when any rotation is requested.
	Rotations []int
}

func (o *ContextOptions) fill() {
	if o.LogN == 0 {
		o.LogN = 12
	}
	if o.LogScale == 0 {
		o.LogScale = 28
	}
	if o.Limbs == 0 {
		o.Limbs = 6
	}
	if o.Dnum == 0 {
		o.Dnum = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// NewContext creates a ready-to-use CKKS context with fresh keys.
func NewContext(opts ContextOptions) (*Context, error) {
	opts.fill()
	p, err := ckks.NewParameters(opts.LogN, opts.LogScale, opts.Limbs, opts.Dnum)
	if err != nil {
		return nil, err
	}
	kg := ckks.NewKeyGenerator(p, opts.Seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)

	var gks map[uint64]*ckks.GaloisKey
	if len(opts.Rotations) > 0 {
		gks, err = kg.GenRotationKeys(sk, opts.Rotations)
		if err != nil {
			return nil, err
		}
		conj, err := kg.GenGaloisKey(sk, p.RingQP.GaloisElementForConjugation())
		if err != nil {
			return nil, err
		}
		gks[conj.GaloisEl] = conj
	}

	return &Context{
		Params:    p,
		Encoder:   ckks.NewEncoder(p),
		Encryptor: ckks.NewEncryptor(p, pk, opts.Seed+1),
		Decryptor: ckks.NewDecryptor(p, sk),
		Evaluator: ckks.NewEvaluator(p, rlk, gks),
		sk:        sk,
		kg:        kg,
	}, nil
}

// Slots returns the number of complex plaintext slots.
func (c *Context) Slots() int { return c.Params.Slots() }

// EncryptValues encodes and encrypts a slot vector in one call.
func (c *Context) EncryptValues(values []complex128) (*Ciphertext, error) {
	pt, err := c.Encoder.Encode(values)
	if err != nil {
		return nil, err
	}
	return c.Encryptor.Encrypt(pt), nil
}

// DecryptValues decrypts and decodes a ciphertext in one call.
func (c *Context) DecryptValues(ct *Ciphertext) []complex128 {
	return c.Encoder.Decode(c.Decryptor.Decrypt(ct))
}

// MulRescale multiplies two ciphertexts, relinearises, and rescales.
func (c *Context) MulRescale(a, b *Ciphertext) (*Ciphertext, error) {
	prod, err := c.Evaluator.MulRelin(a, b)
	if err != nil {
		return nil, err
	}
	return c.Evaluator.Rescale(prod)
}

// ---- BAT / MAT building blocks (for downstream compiler users) ----

// ScalarPlan is the dense K×K BAT matrix of one pre-known scalar.
type ScalarPlan = bat.ScalarPlan

// MatMulPlan is the compiled BAT form of a ModMatMul with pre-known
// left operand.
type MatMulPlan = bat.MatMulPlan

// Permutation is MAT's reordering representation.
type Permutation = mat.Permutation

// Modulus is a prime modulus with precomputed reduction constants.
type Modulus = modarith.Modulus

// NewModulus validates and precomputes a prime modulus.
func NewModulus(q uint64) (*Modulus, error) { return modarith.NewModulus(q) }

// CompileScalarBAT compiles a pre-known scalar into its dense BAT form
// (Alg. 2 DIRECTSCALARBAT).
func CompileScalarBAT(m *Modulus, a uint64) (*ScalarPlan, error) {
	return bat.DirectScalarBAT(m, a)
}

// CompileMatMulBAT compiles a pre-known H×V left matrix for BAT
// ModMatMul (Alg. 2 OFFLINECOMPILELEFT).
func CompileMatMulBAT(m *Modulus, a []uint64, h, v int) (*MatMulPlan, error) {
	return bat.OfflineCompileLeft(m, a, h, v)
}

// MatNTTPlan is the layout-invariant 3-step NTT (MAT, Fig. 10).
type MatNTTPlan = ring.MatNTTPlan

// Ring is the negacyclic polynomial ring substrate.
type Ring = ring.Ring

// NewRing constructs R_q = Z_q[x]/(x^N+1) over an NTT-friendly prime
// chain.
func NewRing(n int, primes []uint64) (*Ring, error) { return ring.NewRing(n, primes) }

// NTTFriendlyPrimes generates `count` primes of the given bit size with
// q ≡ 1 mod 2n.
func NTTFriendlyPrimes(bitSize uint, n uint64, count int) ([]uint64, error) {
	return modarith.GenerateNTTPrimes(bitSize, n, count)
}

// NewMatNTTPlan compiles the layout-invariant 3-step NTT for a ring and
// (R, C) split; order is LayoutDigitSwap (zero reordering) or
// LayoutBitRev (radix-2-compatible output).
func NewMatNTTPlan(r *Ring, rr, cc int, order ring.Layout) (*MatNTTPlan, error) {
	return ring.NewMatNTTPlan(r, rr, cc, order)
}

// NTT output layouts.
const (
	LayoutNatural   = ring.LayoutNatural
	LayoutBitRev    = ring.LayoutBitRev
	LayoutDigitSwap = ring.LayoutDigitSwap
)

// ---- Experiments layer ----

// Experiment is one regenerated table or figure.
type Experiment = harness.Report

// AllExperiments regenerates the paper's full evaluation section.
func AllExperiments() []Experiment { return harness.AllReports() }

// ExperimentByID regenerates one experiment ("Table V" … "Fig 14").
func ExperimentByID(id string) (Experiment, error) {
	r, ok := harness.ReportByID(id)
	if !ok {
		return Experiment{}, fmt.Errorf("cross: unknown experiment %q (have %v)", id, harness.IDs())
	}
	return r, nil
}

// ExperimentIDs lists the available experiment identifiers.
func ExperimentIDs() []string { return harness.IDs() }

// ---- Sweep / perf-gating layer ----

// SweepConfig selects the sweep axes (parameter sets, TPU specs, pod
// core counts, workloads) and the worker-pool width; the zero value is
// the full cross-product at NumCPU workers.
type SweepConfig = sweep.Config

// SweepRecord is one sweep data point: a workload lowered onto one pod
// configuration, with modeled latency, collective share, and kernel
// counts. Its JSON encoding is the stable schema BENCH_baseline.json
// and the CI perf gate diff on.
type SweepRecord = sweep.Record

// SweepDiffResult is the classified old-vs-new comparison of two
// sweeps (regressions, improvements, coverage drift).
type SweepDiffResult = sweep.DiffResult

// Sweep lowers the configured cross-product concurrently and returns
// deterministic, stably-ordered records — bit-identical at every
// parallelism (the parallel run is tested byte-equal to the serial
// one).
func Sweep(cfg SweepConfig) ([]SweepRecord, error) { return sweep.Run(cfg) }

// Gated sweep metrics (SweepDiffResult.FilterMetric, crossbench
// -metric): the serial total and the overlap-aware makespan.
const (
	SweepMetricTotal      = sweep.MetricTotal
	SweepMetricOverlapped = sweep.MetricOverlapped
)

// SweepDiff compares two sweeps record-by-record and classifies each
// latency change — total_s always, overlapped_s when both sides carry
// the column — against the fractional threshold (0.005 = 0.5%, the CI
// gate's default). The result's HasRegressions is the gate condition
// crossbench -compare exits non-zero on.
func SweepDiff(old, new []SweepRecord, threshold float64) SweepDiffResult {
	return sweep.Diff(old, new, threshold)
}

// ---- Host (wall-clock) perf-gating layer ----

// HostBenchRecord is one host kernel measurement: real ns/op and
// steady-state allocs/op at a fixed size. Its JSON encoding is the
// stable schema BENCH_host.json and the hostbench CI gate diff on.
type HostBenchRecord = hostbench.Record

// HostBenchDiffResult is the classified old-vs-new comparison of two
// host benchmark runs.
type HostBenchDiffResult = hostbench.DiffResult

// HostBench measures the host-side functional kernels (NTT/INTT,
// VecMod, automorphism, matrix NTT, BAT MatMul, BConv) at fixed sizes
// and returns stably-ordered records. Unlike Sweep, these are real
// wall-clock numbers for THIS machine: diff them only against a
// baseline recorded on comparable hardware.
func HostBench() ([]HostBenchRecord, error) { return hostbench.Run() }

// HostBenchDiff compares two host benchmark runs. Wall time is
// classified against the fractional threshold (generous — CI runners
// are noisy); allocs/op is gated strictly at zero drift.
func HostBenchDiff(old, new []HostBenchRecord, threshold float64) HostBenchDiffResult {
	return hostbench.Diff(old, new, threshold)
}

// HostBenchEnvironment captures the machine a host run was measured on
// (CPU model, GOMAXPROCS, Go version, …); mismatches against a
// baseline surface as diff warnings.
type HostBenchEnvironment = hostbench.Environment

// HostBenchFile is the BENCH_host.json schema: the measuring
// environment plus the records.
type HostBenchFile = hostbench.File

// HostBenchRunFile measures the host kernels and stamps the current
// environment — the content written to BENCH_host.json.
func HostBenchRunFile() (HostBenchFile, error) { return hostbench.RunFile() }

// HostBenchDiffFiles compares two host benchmark files: records as
// HostBenchDiff, plus environment-mismatch warnings.
func HostBenchDiffFiles(old, new HostBenchFile, threshold float64) HostBenchDiffResult {
	return hostbench.DiffFiles(old, new, threshold)
}

// ---- Calibration / model-drift-gating layer ----

// CalibConfig controls a calibration run (host measurement sizes and
// repeats, fitter parallelism); the zero value is the default run.
type CalibConfig = calib.Config

// CalibRecord is one calibration point: a kernel's measured
// ground-truth latency against the model's prediction under default
// and fitted constants.
type CalibRecord = calib.Record

// CalibSpecFit is one spec's fitted constants with before/after model
// error.
type CalibSpecFit = calib.SpecFit

// CalibReport is the committable BENCH_calib.json content: every
// calibration record, every spec's fit, and the measuring environment.
type CalibReport = calib.Report

// CalibDiffResult is the classified comparison of two calibration
// reports — the calib-gate's verdict.
type CalibDiffResult = calib.DiffResult

// Calib measures ground truth (host kernels timed here; published
// TPU/GPU figures from the paper), prices the same work through the
// roofline model, and least-squares fits each spec's free constants.
// Published-source content is deterministic; host records vary with
// the machine and are warning-gated only.
func Calib(cfg CalibConfig) (*CalibReport, error) { return calib.Run(cfg) }

// CalibDiff compares two calibration reports against the fractional
// drift threshold. Its HasRegressions is the calib-gate condition:
// published-record model-error growth or published-spec constant
// drift fails; host drift and environment mismatches only warn.
func CalibDiff(old, new *CalibReport, threshold float64) CalibDiffResult {
	return calib.Diff(old, new, threshold)
}

// CalibKernels lists the kernel names Compiler.PredictKernel prices —
// the model-side vocabulary matching the host benchmark suite.
func CalibKernels() []string { return icross.CalibKernels() }

// ---- Serving-simulator layer ----

// ServeConfig selects one serving scenario: TPU generation, parameter
// set, fleet size, dispatch policy, offered rate, batching limits, and
// workload mix. The zero value resolves to a 4-pod TPUv6e fleet under
// Set B at 70% of capacity.
type ServeConfig = serve.Config

// ServeResult is one serving run's record: the resolved config plus
// capacity, achieved throughput, pod utilization, queue depths, and
// p50/p95/p99 latency. Its JSON encoding is the stable schema of
// DESIGN.md §12, bit-identical across runs for a fixed seed.
type ServeResult = serve.Result

// ServeMixEntry is one workload class and its share of the arrival
// stream.
type ServeMixEntry = serve.MixEntry

// ServeFleetGroup is one homogeneous slice of a heterogeneous fleet:
// a device, its per-pod core count, how many pods, and an hourly
// price (0 resolves to the built-in per-device default).
// ServeConfig.Fleet lists the groups; pods are numbered in
// declaration order.
type ServeFleetGroup = serve.FleetGroup

// ServeSLOClass is one service class: a name referenced from
// ServeMixEntry.Class, a strict (non-preemptive) priority, an
// optional per-class deadline, and an optional fleet-wide admission
// limit on queued requests of the class.
type ServeSLOClass = serve.SLOClass

// ServeTraceEvent is one recorded arrival for trace-replay mode:
// an absolute arrival time and a workload name.
type ServeTraceEvent = serve.TraceEvent

// ServeClassStats is the per-SLO-class section of a serve record.
type ServeClassStats = serve.ClassStats

// ServeCostStats is the fleet-economics section of a serve record:
// hourly price, requests/sec per dollar/hour, and dollars per million
// requests at the achieved rate.
type ServeCostStats = serve.CostStats

// ServeLoadTrace reads an arrival trace for ServeConfig.TraceEvents
// from a JSON array of {"t","workload"} objects or a "t,workload" CSV
// (header and #-comment lines are skipped).
func ServeLoadTrace(path string) ([]ServeTraceEvent, error) { return serve.LoadTrace(path) }

// ServeParseFleet parses a fleet spec "device:cores:count[:dollar]"
// with groups joined by "+", e.g. "TPUv6e:1:4+H100:8:2:64".
func ServeParseFleet(s string) ([]ServeFleetGroup, error) { return serve.ParseFleet(s) }

// ServeParseFleets parses a comma-separated list of fleet specs (see
// ServeParseFleet) into candidate fleets for ServePlan.
func ServeParseFleets(s string) ([][]ServeFleetGroup, error) { return serve.ParseFleets(s) }

// Dispatch policies for ServeConfig.Policy.
const (
	ServeRoundRobin  = serve.PolicyRoundRobin
	ServeLeastLoaded = serve.PolicyLeastLoaded
	ServeJSQ         = serve.PolicyJSQ
	ServeCheapest    = serve.PolicyCheapest
)

// Latency-statistics modes for ServeConfig.Stats.
const (
	ServeStatsStored    = serve.StatsStored
	ServeStatsStreaming = serve.StatsStreaming
)

// Serve executes one serving scenario of the discrete-event simulator
// to completion: every request offered within the horizon is served,
// so overload shows up as makespan and tail latency, not loss (under
// faults, also as shed, timed-out, and failed requests). The result is
// a pure function of the config (see internal/serve's determinism
// contract).
func Serve(cfg ServeConfig) (*ServeResult, error) { return serve.Run(cfg) }

// FaultConfig selects the deterministic fault-and-recovery scenario
// for ServeConfig.Faults: pod crash/recover (exponential MTBF/MTTR),
// transient stragglers, batch-level transient errors, plus the
// client-side recovery knobs — deadlines, capped-backoff retries,
// hedged dispatch, and queue-depth admission control. The zero value
// disables everything and leaves the serve record byte-identical to a
// fault-free run.
type FaultConfig = faults.Config

// ServeAvailability is the availability section a fault-configured
// serve run adds to its record: goodput, shed/timed-out/failed counts,
// retry and hedge activity, per-pod downtime, and latency conditioned
// on completing within deadline.
type ServeAvailability = serve.AvailabilityStats

// ServeChaosConfig sweeps one serving scenario across a grid of crash
// MTBFs, holding every other fault knob fixed.
type ServeChaosConfig = serve.ChaosConfig

// ServeChaosPoint is one chaos grid cell's availability summary.
type ServeChaosPoint = serve.ChaosPoint

// ServeChaosResult is the stable record of a chaos sweep,
// healthiest-first.
type ServeChaosResult = serve.ChaosResult

// ServeChaos runs the MTBF grid: the fleet is priced once, then one
// deterministic serve run per cell measures how goodput and the
// in-deadline tail degrade as crashes become more frequent.
func ServeChaos(cc ServeChaosConfig) (*ServeChaosResult, error) { return serve.Chaos(cc) }

// ServePlanConfig is one capacity-planning question: a base serving
// scenario, a set of candidate fleets (empty = a 1/2/4/8-pod ladder of
// the base device), and a target p99 in seconds.
type ServePlanConfig = serve.PlanConfig

// ServePlanPoint is one candidate fleet's operating point: the highest
// offered rate whose delivered p99 meets the target, and what a
// request costs there.
type ServePlanPoint = serve.PlanPoint

// ServePlanResult is the capacity-planning frontier, best
// requests/sec/dollar first (infeasible candidates last).
type ServePlanResult = serve.PlanResult

// ServePlan answers "requests/sec/dollar at p99 ≤ X" for each
// candidate fleet by deterministically bisecting the offered rate and
// running the full simulator at every probe.
func ServePlan(pc ServePlanConfig) (*ServePlanResult, error) { return serve.Plan(pc) }

// EstimateMNIST estimates the §V-D MNIST CNN latency on a compiler.
func EstimateMNIST(c *Compiler) (total, perImage float64) {
	return workload.EstimateMNIST(c)
}

// EstimateHELR estimates one §V-D logistic-regression iteration.
func EstimateHELR(c *Compiler) float64 { return workload.EstimateHELR(c) }

// MNISTProgram composes the §V-D CNN schedule into a Program (one
// image; chain .Batch(64) for the paper's evaluation batch).
func MNISTProgram(c *Compiler) *Program { return workload.MNISTProgram(c) }

// HELRProgram composes one §V-D logistic-regression training iteration
// into a Program.
func HELRProgram(c *Compiler) *Program { return workload.HELRProgram(c) }

// MNISTParams returns the paper's MNIST HE configuration.
func MNISTParams() Params { return workload.MNISTParams() }
